//! SGD with momentum — the optimizer used by every method in the paper
//! (lr 0.01, momentum 0.5).

use std::collections::BTreeMap;

use adaptivefl_tensor::{Scratch, Tensor};

use crate::layer::{Layer, ParamKind};

/// Stochastic gradient descent with classical momentum and optional
/// weight decay.
///
/// Momentum buffers are keyed by parameter name, so the same optimizer
/// can be reused across submodels of different widths — buffers are
/// (re)created lazily when a parameter's shape changes, which is exactly
/// what happens when a client receives a differently pruned model.
///
/// All temporaries (momentum buffers, decayed-gradient staging) come
/// from a [`Scratch`] arena — pass a shared one via [`Sgd::with_scratch`]
/// to amortise the allocations across training sessions. The update
/// arithmetic is independent of the arena: a step with a shared arena is
/// bit-identical to one with a private arena.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight-decay coefficient (0 disables).
    pub weight_decay: f32,
    velocity: BTreeMap<String, Tensor>,
    scratch: Scratch,
}

impl Sgd {
    /// Creates an SGD optimizer with a private scratch arena.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum < 0`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(momentum >= 0.0, "momentum must be non-negative");
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
            velocity: BTreeMap::new(),
            scratch: Scratch::new(),
        }
    }

    /// Builder-style weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Builder-style shared scratch arena for all optimizer buffers.
    pub fn with_scratch(mut self, scratch: Scratch) -> Self {
        self.scratch = scratch;
        self
    }

    /// Applies one SGD step to every trainable parameter of `model`,
    /// using the gradients accumulated by `backward`.
    pub fn step(&mut self, model: &mut dyn Layer) {
        let lr = self.lr;
        let mu = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        let scratch = &self.scratch;
        model.visit_params_mut(
            "",
            &mut |name: &str, kind: ParamKind, value: &mut Tensor, grad: &mut Tensor| {
                if !kind.is_trainable() {
                    return;
                }
                // The decayed gradient is staged in the arena only when
                // weight decay is active; the common `wd == 0` path
                // uses `grad` in place and allocates nothing.
                let decayed = (wd != 0.0).then(|| {
                    let mut g = scratch.take_tensor_copy(grad);
                    g.axpy(wd, value);
                    g
                });
                let g: &Tensor = decayed.as_ref().unwrap_or(grad);
                if mu != 0.0 {
                    if !velocity.contains_key(name) {
                        velocity.insert(name.to_string(), scratch.take_tensor(g.shape()));
                    }
                    let v = velocity.get_mut(name).expect("just inserted");
                    if v.shape() != g.shape() {
                        let fresh = scratch.take_tensor(g.shape());
                        scratch.recycle_tensor(std::mem::replace(v, fresh));
                    }
                    v.scale(mu);
                    v.add_assign(g);
                    value.axpy(-lr, v);
                } else {
                    value.axpy(-lr, g);
                }
                if let Some(g) = decayed {
                    scratch.recycle_tensor(g);
                }
            },
        );
    }

    /// Discards all momentum buffers (e.g. between federated rounds,
    /// where each local training session starts fresh), returning them
    /// to the scratch arena.
    pub fn reset_state(&mut self) {
        let velocity = std::mem::take(&mut self.velocity);
        for (_, v) in velocity {
            self.scratch.recycle_tensor(v);
        }
    }
}

impl Drop for Sgd {
    /// Returns the momentum buffers to the arena so the next training
    /// session (which builds a fresh `Sgd`) reuses them.
    fn drop(&mut self) {
        self.reset_state();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerExt;
    use crate::layers::Linear;
    use crate::loss::softmax_cross_entropy;
    use adaptivefl_tensor::{init, rng, Scratch};

    #[test]
    fn sgd_descends_a_quadratic() {
        // Train y = Wx to map a fixed input to class 0.
        let mut r = rng::seeded(20);
        let mut fc = Linear::new(4, 3, &mut r);
        let x = init::normal(&[8, 4], 1.0, &mut r);
        let labels = vec![0usize; 8];
        let mut opt = Sgd::new(0.1, 0.5);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..50 {
            fc.zero_grads();
            let logits = fc.forward(x.clone(), true);
            let out = softmax_cross_entropy(&logits, &labels);
            let _ = fc.backward(out.dlogits);
            opt.step(&mut fc);
            first.get_or_insert(out.loss);
            last = out.loss;
        }
        assert!(last < 0.3 * first.unwrap(), "loss {last} vs {first:?}");
    }

    #[test]
    fn momentum_buffers_track_param_names() {
        let mut r = rng::seeded(21);
        let mut fc = Linear::new(2, 2, &mut r);
        let mut opt = Sgd::new(0.01, 0.9);
        fc.zero_grads();
        let y = fc.forward(Tensor::ones(&[1, 2]), true);
        let _ = fc.backward(Tensor::ones(y.shape()));
        opt.step(&mut fc);
        assert_eq!(opt.velocity.len(), 2);
        opt.reset_state();
        assert!(opt.velocity.is_empty());
    }

    #[test]
    fn shape_change_resets_buffer() {
        // Same parameter name, different width (pruned model).
        let mut r = rng::seeded(22);
        let mut big = Linear::new(4, 4, &mut r);
        let mut small = Linear::new(2, 2, &mut r);
        let mut opt = Sgd::new(0.01, 0.9);
        for fc in [&mut big, &mut small] {
            fc.zero_grads();
            let y = fc.forward(Tensor::ones(&[1, fc.in_features()]), true);
            let _ = fc.backward(Tensor::ones(y.shape()));
        }
        opt.step(&mut big);
        opt.step(&mut small); // must not panic on shape mismatch
        assert_eq!(small.param_map().numel(), 2 * 2 + 2);
    }

    #[test]
    fn shared_scratch_is_bit_identical_to_private() {
        // Pre-dirty the shared arena so reuse actually happens, then
        // train two identical models with and without it.
        let run = |scratch: Option<Scratch>| {
            let mut r = rng::seeded(24);
            let mut fc = Linear::new(4, 3, &mut r);
            let x = init::normal(&[6, 4], 1.0, &mut r);
            let mut opt = Sgd::new(0.1, 0.7).with_weight_decay(0.01);
            if let Some(s) = scratch {
                opt = opt.with_scratch(s);
            }
            for _ in 0..5 {
                fc.zero_grads();
                let logits = fc.forward(x.clone(), true);
                let out = softmax_cross_entropy(&logits, &[0usize; 6]);
                let _ = fc.backward(out.dlogits);
                opt.step(&mut fc);
            }
            fc.param_map()
        };
        let shared = Scratch::new();
        let mut dirty = shared.take(64);
        dirty.fill(123.456);
        shared.recycle(dirty);
        let a = run(None);
        let b = run(Some(shared.clone()));
        assert_eq!(a, b);
        assert!(shared.reuses() > 0, "arena was never reused");
    }

    #[test]
    fn drop_recycles_velocity_into_scratch() {
        let shared = Scratch::new();
        let mut r = rng::seeded(25);
        let mut fc = Linear::new(3, 2, &mut r);
        {
            let mut opt = Sgd::new(0.1, 0.9).with_scratch(shared.clone());
            fc.zero_grads();
            let y = fc.forward(Tensor::ones(&[1, 3]), true);
            let _ = fc.backward(Tensor::ones(y.shape()));
            opt.step(&mut fc);
        }
        // weight + bias velocity buffers returned on drop.
        assert_eq!(shared.free_buffers(), 2);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut r = rng::seeded(23);
        let mut fc = Linear::new(3, 3, &mut r);
        let before = fc.param_map().get("weight").unwrap().sq_norm();
        let mut opt = Sgd::new(0.1, 0.0).with_weight_decay(0.1);
        fc.zero_grads(); // zero grads: only decay acts
        opt.step(&mut fc);
        let after = fc.param_map().get("weight").unwrap().sq_norm();
        assert!(after < before);
    }
}
