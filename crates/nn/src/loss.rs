//! Classification losses: softmax cross-entropy and the distillation
//! (KL) loss used by the ScaleFL baseline's self-distillation.

use adaptivefl_tensor::ops::{log_softmax_rows, softmax_rows};
use adaptivefl_tensor::Tensor;

/// Result of a loss evaluation: the scalar loss (mean over the batch)
/// and the gradient w.r.t. the logits.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient w.r.t. the logits, same shape as the logits.
    pub dlogits: Tensor,
}

/// Softmax cross-entropy with integer labels.
///
/// `logits` has shape `[n, classes]`; `labels` must have length `n` and
/// each entry `< classes`.
///
/// # Panics
///
/// Panics on shape mismatch or an out-of-range label.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> LossOutput {
    let s = logits.shape();
    assert_eq!(s.len(), 2, "logits must be [n, classes]");
    let (n, k) = (s[0], s[1]);
    assert_eq!(labels.len(), n, "label count mismatch");
    let log_p = log_softmax_rows(logits);
    let mut loss = 0.0f32;
    let mut dlogits = softmax_rows(logits);
    let inv_n = 1.0 / n.max(1) as f32;
    for (r, &y) in labels.iter().enumerate() {
        assert!(y < k, "label {y} out of range for {k} classes");
        loss -= log_p.as_slice()[r * k + y];
        dlogits.as_mut_slice()[r * k + y] -= 1.0;
    }
    dlogits.scale(inv_n);
    LossOutput {
        loss: loss * inv_n,
        dlogits,
    }
}

/// Distillation loss: temperature-scaled KL divergence
/// `KL(softmax(t/T) ‖ softmax(s/T)) · T²`, mean over the batch.
///
/// Returns the gradient w.r.t. the **student** logits; the teacher is
/// treated as a constant.
///
/// # Panics
///
/// Panics if the shapes differ or `temperature <= 0`.
pub fn distillation_loss(student: &Tensor, teacher: &Tensor, temperature: f32) -> LossOutput {
    assert_eq!(student.shape(), teacher.shape(), "logit shape mismatch");
    assert!(temperature > 0.0, "temperature must be positive");
    let s = student.shape();
    let (n, k) = (s[0], s[1]);
    let t_inv = 1.0 / temperature;
    let st = student.map(|v| v * t_inv);
    let te = teacher.map(|v| v * t_inv);
    let log_ps = log_softmax_rows(&st);
    let log_pt = log_softmax_rows(&te);
    let pt = log_pt.map(f32::exp);
    let ps = log_ps.map(f32::exp);

    let inv_n = 1.0 / n.max(1) as f32;
    let mut loss = 0.0f32;
    for i in 0..n * k {
        let p = pt.as_slice()[i];
        if p > 0.0 {
            loss += p * (log_pt.as_slice()[i] - log_ps.as_slice()[i]);
        }
    }
    // d/ds of KL(pt ‖ ps(s/T))·T² = T · (ps − pt); the T² compensates
    // the 1/T from the chain rule (standard Hinton scaling).
    let mut dlogits = ps.zip_map(&pt, |a, b| (a - b) * temperature);
    dlogits.scale(inv_n);
    LossOutput {
        loss: loss * temperature * temperature * inv_n,
        dlogits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]);
        let out = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(out.loss < 1e-3);
        assert!(out.dlogits.sq_norm() < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let logits = Tensor::zeros(&[1, 4]);
        let out = softmax_cross_entropy(&logits, &[2]);
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(vec![0.3, -0.5, 1.2, 0.1, 0.0, -1.0], &[2, 3]);
        let labels = [2usize, 0];
        let out = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let num = (softmax_cross_entropy(&lp, &labels).loss
                - softmax_cross_entropy(&lm, &labels).loss)
                / (2.0 * eps);
            let ana = out.dlogits.as_slice()[idx];
            assert!((num - ana).abs() < 1e-3, "{num} vs {ana}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        softmax_cross_entropy(&Tensor::zeros(&[1, 3]), &[3]);
    }

    #[test]
    fn distillation_zero_when_identical() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let out = distillation_loss(&logits, &logits, 2.0);
        assert!(out.loss.abs() < 1e-6);
        assert!(out.dlogits.sq_norm() < 1e-10);
    }

    #[test]
    fn distillation_gradient_matches_finite_differences() {
        let student = Tensor::from_vec(vec![0.2, -0.1, 0.5, 1.0], &[2, 2]);
        let teacher = Tensor::from_vec(vec![1.0, 0.0, -0.5, 0.5], &[2, 2]);
        let out = distillation_loss(&student, &teacher, 3.0);
        let eps = 1e-3f32;
        for idx in 0..4 {
            let mut sp = student.clone();
            sp.as_mut_slice()[idx] += eps;
            let mut sm = student.clone();
            sm.as_mut_slice()[idx] -= eps;
            let num = (distillation_loss(&sp, &teacher, 3.0).loss
                - distillation_loss(&sm, &teacher, 3.0).loss)
                / (2.0 * eps);
            let ana = out.dlogits.as_slice()[idx];
            assert!((num - ana).abs() < 1e-3, "{num} vs {ana}");
        }
    }
}
