//! The tracing determinism contract (the PR's acceptance criterion):
//! a traced run's `RunResult` fingerprint is bit-identical to an
//! untraced one, for every method kind, under both the perfect
//! sequential transport and the faulty parallel `SimTransport`.

use std::sync::Arc;

use adaptivefl_comm::{FaultPlan, SimTransport};
use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::select::SelectionStrategy;
use adaptivefl_core::sim::{SimConfig, Simulation};
use adaptivefl_core::trace::{Phase, Tracer};
use adaptivefl_trace::{read_trace, JsonlTracer, RecordingTracer, TraceLine, TraceReport};

fn all_kinds() -> [MethodKind; 7] {
    [
        MethodKind::AdaptiveFl,
        MethodKind::AdaptiveFlGreedy,
        MethodKind::AdaptiveFlVariant(SelectionStrategy::Random),
        MethodKind::AllLarge,
        MethodKind::Decoupled,
        MethodKind::HeteroFl,
        MethodKind::ScaleFl,
    ]
}

fn prepare() -> Simulation {
    let cfg = SimConfig::quick_test(900);
    let mut spec = adaptivefl_data::SynthSpec::test_spec(4);
    spec.input = (3, 8, 8);
    Simulation::prepare(&cfg, &spec, adaptivefl_data::Partition::Dirichlet(0.5))
}

fn faulty_transport() -> SimTransport {
    SimTransport::new().with_threads(2).with_faults(FaultPlan {
        upload_drop: 0.15,
        straggler_prob: 0.2,
        crash_prob: 0.1,
        truncate_prob: 0.05,
        seed: 7,
        ..Default::default()
    })
}

fn fingerprint(kind: MethodKind, tracer: Option<Arc<dyn Tracer>>, faulty: bool) -> String {
    let mut sim = prepare();
    if let Some(t) = tracer {
        sim.set_tracer(t);
    }
    let result = if faulty {
        sim.run_with_transport(kind, &mut faulty_transport())
    } else {
        sim.run(kind)
    };
    result.fingerprint()
}

#[test]
fn recording_tracer_is_invisible_over_perfect_transport() {
    for kind in all_kinds() {
        let untraced = fingerprint(kind, None, false);
        let recorder = Arc::new(RecordingTracer::new());
        let traced = fingerprint(kind, Some(recorder.clone() as Arc<dyn Tracer>), false);
        assert_eq!(untraced, traced, "{kind}: tracing changed the run");
        assert!(
            recorder.event_count() > 0,
            "{kind}: the tracer saw nothing — instrumentation is dead"
        );
    }
}

#[test]
fn recording_tracer_is_invisible_over_faulty_transport() {
    for kind in all_kinds() {
        let untraced = fingerprint(kind, None, true);
        let recorder = Arc::new(RecordingTracer::new());
        let traced = fingerprint(kind, Some(recorder.clone() as Arc<dyn Tracer>), true);
        assert_eq!(
            untraced, traced,
            "{kind}: tracing changed the faulty-transport run"
        );
        // The comm layer must have reported per-client link events.
        let comm_events =
            recorder.events_where(|e| matches!(e, adaptivefl_core::trace::TraceEvent::Comm { .. }));
        assert!(!comm_events.is_empty(), "{kind}: no comm events traced");
    }
}

#[test]
fn jsonl_tracer_is_invisible_and_produces_a_readable_trace() {
    let dir = std::env::temp_dir().join(format!("afl-determinism-{}", std::process::id()));
    for faulty in [false, true] {
        let untraced = fingerprint(MethodKind::AdaptiveFl, None, faulty);
        let path = dir.join(format!("adaptivefl-faulty-{faulty}.jsonl"));
        let tracer = Arc::new(JsonlTracer::create(&path).expect("create trace"));
        let traced = fingerprint(MethodKind::AdaptiveFl, Some(tracer.clone()), faulty);
        assert_eq!(untraced, traced, "JSONL tracing changed the run");
        tracer.flush().expect("flush");
        assert!(!tracer.had_errors());

        // The streamed trace parses and renders into a report with
        // the run's phases and coverage.
        let lines = read_trace(&path).expect("parse trace");
        assert!(lines.len() > 10, "trace suspiciously short");
        let report = TraceReport::from_lines(&lines);
        assert_eq!(report.methods, vec!["AdaptiveFL".to_string()]);
        assert_eq!(report.rounds, 4);
        assert!(report.phases.contains_key(Phase::Round.name()));
        assert!(report.phases.contains_key(Phase::Aggregate.name()));
        assert!(!report.coverage.is_empty(), "no layer coverage traced");
        let text = report.render();
        assert!(text.contains("phase breakdown"), "{text}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recording_and_jsonl_tracers_agree_on_events() {
    // The same run through both tracers yields the same event stream
    // (phase durations differ — wall clock — but events are identical).
    let recorder = Arc::new(RecordingTracer::new());
    fingerprint(
        MethodKind::AdaptiveFl,
        Some(recorder.clone() as Arc<dyn Tracer>),
        false,
    );

    let dir = std::env::temp_dir().join(format!("afl-agree-{}", std::process::id()));
    let path = dir.join("run.jsonl");
    let jsonl = Arc::new(JsonlTracer::create(&path).expect("create trace"));
    fingerprint(
        MethodKind::AdaptiveFl,
        Some(jsonl.clone() as Arc<dyn Tracer>),
        false,
    );
    jsonl.flush().expect("flush");

    let from_file: Vec<_> = read_trace(&path)
        .expect("parse")
        .into_iter()
        .filter_map(|l| match l {
            TraceLine::Event(e) => Some(e),
            TraceLine::Phase { .. } => None,
        })
        .collect();
    assert_eq!(recorder.events(), from_file);
    std::fs::remove_dir_all(&dir).ok();
}
