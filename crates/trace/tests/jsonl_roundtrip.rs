//! Property test: the JSONL codec is lossless — `parse_line` inverts
//! `encode_line` for every event variant, with arbitrary integers,
//! floats (shortest round-trip text), and awkward strings.

use adaptivefl_core::trace::{Phase, TraceEvent};
use adaptivefl_trace::{encode_line, parse_document, parse_line, TraceLine};
use proptest::prelude::*;

/// Strings exercising every escaping path: quotes, backslashes,
/// control characters, multi-byte UTF-8, and emptiness.
const TRICKY: &[&str] = &[
    "",
    "conv1.weight",
    "with \"quotes\" inside",
    "back\\slash",
    "tab\tnewline\nret\r",
    "nul\u{0}bell\u{7}",
    "ünïcødé-λαμβδα-模型",
    "trailing space ",
    "/slashes/and.dots",
];

const STATUSES: &[&str] = &["delivered", "training_failed", "dropped", "late", "crashed"];

/// Builds one event from drawn raw parts, cycling through all 13
/// variants via `variant`.
fn build_event(variant: usize, a: u64, b: usize, f: f64, g: f32, sidx: usize) -> TraceEvent {
    let s = TRICKY[sidx % TRICKY.len()];
    let status: &'static str = STATUSES[b % STATUSES.len()];
    match variant % 13 {
        0 => TraceEvent::RunStart {
            method: s.to_string(),
            start_round: b,
            rounds: b.wrapping_add(a as usize % 100),
        },
        1 => TraceEvent::RoundStart { round: b },
        2 => TraceEvent::RoundEnd {
            round: b,
            sim_secs: f,
            failures: b % 17,
        },
        3 => TraceEvent::Dispatch {
            round: b,
            client: b % 101,
            tag: b % 7,
            params: a,
        },
        4 => TraceEvent::ClientTrain {
            round: b,
            client: b % 101,
            tag: b % 7,
            loss: g,
            samples: b % 1000,
            macs_per_sample: a,
        },
        5 => TraceEvent::Collect {
            round: b,
            client: b % 101,
            status,
            up_params: a,
        },
        6 => TraceEvent::LayerCoverage {
            round: b,
            layer: s.to_string(),
            covered: a % 1_000_000,
            total: a,
            uploads: b % 32,
        },
        7 => TraceEvent::RlDispatch {
            round: b,
            client: b % 101,
            level: b % 3,
        },
        8 => TraceEvent::RlReturn {
            round: b,
            client: b % 101,
            sent: b % 7,
            returned: if a.is_multiple_of(2) {
                None
            } else {
                Some(b % 7)
            },
        },
        9 => TraceEvent::Comm {
            round: b,
            client: b % 101,
            bytes_down: a,
            bytes_up: a / 3,
            status,
            straggled: a % 2 == 1,
        },
        10 => TraceEvent::CheckpointSave { round: b },
        11 => TraceEvent::CheckpointLoad { round: b },
        _ => TraceEvent::Eval { round: b, full: g },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse ∘ encode = identity for single event lines.
    #[test]
    fn event_lines_roundtrip(
        variant in 0usize..13,
        a in 0u64..u64::MAX,
        b in 0usize..1_000_000,
        f in -1e12f64..1e12,
        g in -1e6f32..1e6,
        sidx in 0usize..9,
    ) {
        let line = TraceLine::Event(build_event(variant, a, b, f, g, sidx));
        let text = encode_line(&line);
        prop_assert!(!text.contains('\n'), "a line must be one line: {}", text);
        let back = parse_line(&text).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&back, &line, "roundtrip failed for {}", text);
    }

    /// Phase lines round-trip for every phase and any u64 duration.
    #[test]
    fn phase_lines_roundtrip(
        pidx in 0usize..7,
        nanos in 0u64..u64::MAX,
    ) {
        let line = TraceLine::Phase {
            phase: Phase::all()[pidx],
            nanos,
        };
        let text = encode_line(&line);
        let back = parse_line(&text).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back, line);
    }

    /// Whole documents round-trip: N lines in, the same N lines out,
    /// in order, with blank lines tolerated.
    #[test]
    fn documents_roundtrip(
        seeds in prop::collection::vec(
            (0usize..13, 0u64..u64::MAX, 0usize..10_000, 0usize..9),
            1..20,
        ),
    ) {
        let lines: Vec<TraceLine> = seeds
            .iter()
            .map(|&(v, a, b, sidx)| {
                TraceLine::Event(build_event(v, a, b, 0.5, -1.25, sidx))
            })
            .collect();
        let mut doc = String::new();
        for (i, l) in lines.iter().enumerate() {
            doc.push_str(&encode_line(l));
            doc.push('\n');
            if i % 3 == 2 {
                doc.push('\n'); // blank separators are skipped
            }
        }
        let back = parse_document(&doc).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back, lines);
    }
}
