//! The JSONL trace codec: one flat JSON object per line.
//!
//! Every line carries a `"type"` tag — either `"phase"` (a timed phase
//! duration) or a [`TraceEvent::kind`] name. Floats are written with
//! Rust's shortest round-trip formatting, so `encode` → `parse` is
//! lossless to the bit (proptested in the crate's tests). The parser
//! is hand-rolled for exactly this flat shape: no nesting, known keys,
//! string/integer/float/bool/null values.

use std::fmt::Write as _;

use adaptivefl_core::trace::{Phase, TraceEvent};
use adaptivefl_core::transport::DeliveryStatus;

/// One line of a trace file.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceLine {
    /// A structured event.
    Event(TraceEvent),
    /// A phase duration sample.
    Phase {
        /// The phase that was timed.
        phase: Phase,
        /// Monotonic nanoseconds.
        nanos: u64,
    },
}

/// Codec error: what went wrong and on which input.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

// ---------------------------------------------------------------- encode

struct Obj {
    buf: String,
}

impl Obj {
    fn new(kind: &str) -> Self {
        let mut buf = String::with_capacity(96);
        buf.push_str("{\"type\":\"");
        buf.push_str(kind);
        buf.push('"');
        Obj { buf }
    }

    fn key(&mut self, k: &str) {
        self.buf.push(',');
        self.buf.push('"');
        self.buf.push_str(k);
        self.buf.push_str("\":");
    }

    fn str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push('"');
        for c in v.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    write!(self.buf, "\\u{:04x}", c as u32).expect("write to String")
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    fn u64(&mut self, k: &str, v: u64) {
        self.key(k);
        write!(self.buf, "{v}").expect("write to String");
    }

    fn usize(&mut self, k: &str, v: usize) {
        self.u64(k, v as u64);
    }

    /// Shortest round-trip float text (`{}` on a finite Rust float
    /// parses back to the identical bits).
    fn f32(&mut self, k: &str, v: f32) {
        self.key(k);
        if v.is_finite() {
            write!(self.buf, "{v}").expect("write to String");
        } else {
            // Non-finite floats aren't JSON numbers; keep the line
            // parseable by quoting them.
            write!(self.buf, "\"{v}\"").expect("write to String");
        }
    }

    fn f64(&mut self, k: &str, v: f64) {
        self.key(k);
        if v.is_finite() {
            write!(self.buf, "{v}").expect("write to String");
        } else {
            write!(self.buf, "\"{v}\"").expect("write to String");
        }
    }

    fn bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    fn opt_usize(&mut self, k: &str, v: Option<usize>) {
        match v {
            Some(v) => self.usize(k, v),
            None => {
                self.key(k);
                self.buf.push_str("null");
            }
        }
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Encodes one line (without trailing newline).
pub fn encode_line(line: &TraceLine) -> String {
    match line {
        TraceLine::Phase { phase, nanos } => {
            let mut o = Obj::new("phase");
            o.str("phase", phase.name());
            o.u64("nanos", *nanos);
            o.finish()
        }
        TraceLine::Event(e) => encode_event(e),
    }
}

fn encode_event(e: &TraceEvent) -> String {
    let mut o = Obj::new(e.kind());
    match e {
        TraceEvent::RunStart {
            method,
            start_round,
            rounds,
        } => {
            o.str("method", method);
            o.usize("start_round", *start_round);
            o.usize("rounds", *rounds);
        }
        TraceEvent::RoundStart { round } => o.usize("round", *round),
        TraceEvent::RoundEnd {
            round,
            sim_secs,
            failures,
        } => {
            o.usize("round", *round);
            o.f64("sim_secs", *sim_secs);
            o.usize("failures", *failures);
        }
        TraceEvent::Dispatch {
            round,
            client,
            tag,
            params,
        } => {
            o.usize("round", *round);
            o.usize("client", *client);
            o.usize("tag", *tag);
            o.u64("params", *params);
        }
        TraceEvent::ClientTrain {
            round,
            client,
            tag,
            loss,
            samples,
            macs_per_sample,
        } => {
            o.usize("round", *round);
            o.usize("client", *client);
            o.usize("tag", *tag);
            o.f32("loss", *loss);
            o.usize("samples", *samples);
            o.u64("macs_per_sample", *macs_per_sample);
        }
        TraceEvent::Collect {
            round,
            client,
            status,
            up_params,
        } => {
            o.usize("round", *round);
            o.usize("client", *client);
            o.str("status", status);
            o.u64("up_params", *up_params);
        }
        TraceEvent::LayerCoverage {
            round,
            layer,
            covered,
            total,
            uploads,
        } => {
            o.usize("round", *round);
            o.str("layer", layer);
            o.u64("covered", *covered);
            o.u64("total", *total);
            o.usize("uploads", *uploads);
        }
        TraceEvent::RlDispatch {
            round,
            client,
            level,
        } => {
            o.usize("round", *round);
            o.usize("client", *client);
            o.usize("level", *level);
        }
        TraceEvent::RlReturn {
            round,
            client,
            sent,
            returned,
        } => {
            o.usize("round", *round);
            o.usize("client", *client);
            o.usize("sent", *sent);
            o.opt_usize("returned", *returned);
        }
        TraceEvent::Comm {
            round,
            client,
            bytes_down,
            bytes_up,
            status,
            straggled,
        } => {
            o.usize("round", *round);
            o.usize("client", *client);
            o.u64("bytes_down", *bytes_down);
            o.u64("bytes_up", *bytes_up);
            o.str("status", status);
            o.bool("straggled", *straggled);
        }
        TraceEvent::CheckpointSave { round } => o.usize("round", *round),
        TraceEvent::CheckpointLoad { round } => o.usize("round", *round),
        TraceEvent::Eval { round, full } => {
            o.usize("round", *round);
            o.f32("full", *full);
        }
    }
    o.finish()
}

// ----------------------------------------------------------------- parse

#[derive(Debug, Clone, PartialEq)]
enum Val {
    Str(String),
    /// Raw number token, parsed lazily at field extraction.
    Num(String),
    Bool(bool),
    Null,
}

struct Fields(Vec<(String, Val)>);

impl Fields {
    fn get(&self, k: &str) -> Result<&Val, ParseError> {
        self.0
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v)
            .ok_or_else(|| ParseError(format!("missing field {k:?}")))
    }

    fn str(&self, k: &str) -> Result<&str, ParseError> {
        match self.get(k)? {
            Val::Str(s) => Ok(s),
            v => err(format!("field {k:?}: expected string, got {v:?}")),
        }
    }

    fn u64(&self, k: &str) -> Result<u64, ParseError> {
        match self.get(k)? {
            Val::Num(raw) => raw
                .parse()
                .map_err(|_| ParseError(format!("field {k:?}: bad integer {raw:?}"))),
            v => err(format!("field {k:?}: expected number, got {v:?}")),
        }
    }

    fn usize(&self, k: &str) -> Result<usize, ParseError> {
        Ok(self.u64(k)? as usize)
    }

    fn f32(&self, k: &str) -> Result<f32, ParseError> {
        // Non-finite floats were quoted on encode.
        let raw = match self.get(k)? {
            Val::Num(raw) => raw,
            Val::Str(s) => s,
            v => return err(format!("field {k:?}: expected float, got {v:?}")),
        };
        raw.parse()
            .map_err(|_| ParseError(format!("field {k:?}: bad float {raw:?}")))
    }

    fn f64(&self, k: &str) -> Result<f64, ParseError> {
        let raw = match self.get(k)? {
            Val::Num(raw) => raw,
            Val::Str(s) => s,
            v => return err(format!("field {k:?}: expected float, got {v:?}")),
        };
        raw.parse()
            .map_err(|_| ParseError(format!("field {k:?}: bad float {raw:?}")))
    }

    fn bool(&self, k: &str) -> Result<bool, ParseError> {
        match self.get(k)? {
            Val::Bool(b) => Ok(*b),
            v => err(format!("field {k:?}: expected bool, got {v:?}")),
        }
    }

    fn opt_usize(&self, k: &str) -> Result<Option<usize>, ParseError> {
        match self.get(k)? {
            Val::Null => Ok(None),
            Val::Num(_) => Ok(Some(self.usize(k)?)),
            v => err(format!("field {k:?}: expected number or null, got {v:?}")),
        }
    }
}

struct Lexer<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Lexer<'a> {
    fn new(s: &'a str) -> Self {
        Lexer {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && (self.s[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.s.get(self.i) else {
                return err("unterminated string");
            };
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.s.get(self.i) else {
                        return err("dangling escape");
                    };
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| ParseError("truncated \\u escape".into()))?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| ParseError("non-ascii \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| ParseError("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| ParseError("invalid codepoint".into()))?,
                            );
                        }
                        _ => return err(format!("unknown escape \\{}", esc as char)),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.i - 1;
                    let mut end = self.i;
                    while end < self.s.len() && (self.s[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.s[start..end])
                        .map_err(|_| ParseError("invalid utf-8 in string".into()))?;
                    out.push_str(chunk);
                    self.i = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<Val, ParseError> {
        match self.peek() {
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b't') | Some(b'f') | Some(b'n') => {
                let start = self.i;
                while self.i < self.s.len() && self.s[self.i].is_ascii_alphabetic() {
                    self.i += 1;
                }
                match &self.s[start..self.i] {
                    b"true" => Ok(Val::Bool(true)),
                    b"false" => Ok(Val::Bool(false)),
                    b"null" => Ok(Val::Null),
                    other => err(format!(
                        "unknown literal {:?}",
                        String::from_utf8_lossy(other)
                    )),
                }
            }
            Some(_) => {
                let start = self.i;
                while self.i < self.s.len() && !matches!(self.s[self.i], b',' | b'}') {
                    self.i += 1;
                }
                let raw = std::str::from_utf8(&self.s[start..self.i])
                    .map_err(|_| ParseError("invalid utf-8 in number".into()))?
                    .trim();
                if raw.is_empty() {
                    err("empty value")
                } else {
                    Ok(Val::Num(raw.to_string()))
                }
            }
            None => err("unexpected end of line"),
        }
    }

    fn object(&mut self) -> Result<Fields, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Fields(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    break;
                }
                _ => return err("expected ',' or '}'"),
            }
        }
        self.skip_ws();
        if self.i != self.s.len() {
            return err("trailing garbage after object");
        }
        Ok(Fields(fields))
    }
}

fn status_from_name(name: &str) -> Result<&'static str, ParseError> {
    use DeliveryStatus::*;
    for s in [Delivered, TrainingFailed, Dropped, Late, Crashed] {
        let n = adaptivefl_core::trace::status_name(s);
        if n == name {
            return Ok(n);
        }
    }
    err(format!("unknown delivery status {name:?}"))
}

/// Parses one line previously produced by [`encode_line`].
pub fn parse_line(line: &str) -> Result<TraceLine, ParseError> {
    let f = Lexer::new(line).object()?;
    let kind = f.str("type")?.to_string();
    let event = match kind.as_str() {
        "phase" => {
            let name = f.str("phase")?;
            let phase = Phase::from_name(name)
                .ok_or_else(|| ParseError(format!("unknown phase {name:?}")))?;
            return Ok(TraceLine::Phase {
                phase,
                nanos: f.u64("nanos")?,
            });
        }
        "run_start" => TraceEvent::RunStart {
            method: f.str("method")?.to_string(),
            start_round: f.usize("start_round")?,
            rounds: f.usize("rounds")?,
        },
        "round_start" => TraceEvent::RoundStart {
            round: f.usize("round")?,
        },
        "round_end" => TraceEvent::RoundEnd {
            round: f.usize("round")?,
            sim_secs: f.f64("sim_secs")?,
            failures: f.usize("failures")?,
        },
        "dispatch" => TraceEvent::Dispatch {
            round: f.usize("round")?,
            client: f.usize("client")?,
            tag: f.usize("tag")?,
            params: f.u64("params")?,
        },
        "client_train" => TraceEvent::ClientTrain {
            round: f.usize("round")?,
            client: f.usize("client")?,
            tag: f.usize("tag")?,
            loss: f.f32("loss")?,
            samples: f.usize("samples")?,
            macs_per_sample: f.u64("macs_per_sample")?,
        },
        "collect" => TraceEvent::Collect {
            round: f.usize("round")?,
            client: f.usize("client")?,
            status: status_from_name(f.str("status")?)?,
            up_params: f.u64("up_params")?,
        },
        "layer_coverage" => TraceEvent::LayerCoverage {
            round: f.usize("round")?,
            layer: f.str("layer")?.to_string(),
            covered: f.u64("covered")?,
            total: f.u64("total")?,
            uploads: f.usize("uploads")?,
        },
        "rl_dispatch" => TraceEvent::RlDispatch {
            round: f.usize("round")?,
            client: f.usize("client")?,
            level: f.usize("level")?,
        },
        "rl_return" => TraceEvent::RlReturn {
            round: f.usize("round")?,
            client: f.usize("client")?,
            sent: f.usize("sent")?,
            returned: f.opt_usize("returned")?,
        },
        "comm" => TraceEvent::Comm {
            round: f.usize("round")?,
            client: f.usize("client")?,
            bytes_down: f.u64("bytes_down")?,
            bytes_up: f.u64("bytes_up")?,
            status: status_from_name(f.str("status")?)?,
            straggled: f.bool("straggled")?,
        },
        "checkpoint_save" => TraceEvent::CheckpointSave {
            round: f.usize("round")?,
        },
        "checkpoint_load" => TraceEvent::CheckpointLoad {
            round: f.usize("round")?,
        },
        "eval" => TraceEvent::Eval {
            round: f.usize("round")?,
            full: f.f32("full")?,
        },
        other => return err(format!("unknown line type {other:?}")),
    };
    Ok(TraceLine::Event(event))
}

/// Parses a whole trace document (newline-separated; blank lines are
/// skipped). Returns the first error with its 1-based line number.
pub fn parse_document(text: &str) -> Result<Vec<TraceLine>, ParseError> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed =
            parse_line(line).map_err(|e| ParseError(format!("line {}: {}", idx + 1, e.0)))?;
        out.push(parsed);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_roundtrip() {
        let lines = [
            TraceLine::Event(TraceEvent::RunStart {
                method: "AdaptiveFL+Greed".into(),
                start_round: 2,
                rounds: 30,
            }),
            TraceLine::Event(TraceEvent::ClientTrain {
                round: 3,
                client: 17,
                tag: 4,
                loss: 1.234_567_9,
                samples: 12,
                macs_per_sample: 987_654_321,
            }),
            TraceLine::Event(TraceEvent::RlReturn {
                round: 1,
                client: 5,
                sent: 4,
                returned: None,
            }),
            TraceLine::Event(TraceEvent::RlReturn {
                round: 1,
                client: 6,
                sent: 4,
                returned: Some(2),
            }),
            TraceLine::Event(TraceEvent::Comm {
                round: 0,
                client: 9,
                bytes_down: 1024,
                bytes_up: 0,
                status: "dropped",
                straggled: true,
            }),
            TraceLine::Phase {
                phase: Phase::Aggregate,
                nanos: u64::MAX,
            },
        ];
        for line in &lines {
            let text = encode_line(line);
            assert_eq!(&parse_line(&text).expect(&text), line, "{text}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let line = TraceLine::Event(TraceEvent::LayerCoverage {
            round: 0,
            layer: "weird\"layer\\name\n\ttab\u{1}é".into(),
            covered: 1,
            total: 2,
            uploads: 3,
        });
        let text = encode_line(&line);
        assert_eq!(parse_line(&text).unwrap(), line);
    }

    #[test]
    fn nonfinite_floats_roundtrip() {
        for v in [f32::INFINITY, f32::NEG_INFINITY, f32::NAN] {
            let line = TraceLine::Event(TraceEvent::Eval { round: 0, full: v });
            let text = encode_line(&line);
            let TraceLine::Event(TraceEvent::Eval { full, .. }) = parse_line(&text).unwrap() else {
                panic!("wrong variant from {text}");
            };
            assert_eq!(full.to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "{",
            "{}",
            "not json",
            r#"{"type":"nope"}"#,
            r#"{"type":"round_start"}"#,
            r#"{"type":"round_start","round":"three"}"#,
            r#"{"type":"phase","phase":"warp","nanos":1}"#,
            r#"{"type":"collect","round":0,"client":1,"status":"exploded","up_params":0}"#,
            r#"{"type":"round_start","round":1}trailing"#,
        ] {
            assert!(parse_line(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn document_reports_line_numbers() {
        let doc = format!(
            "{}\n\n{}\nbroken\n",
            encode_line(&TraceLine::Event(TraceEvent::RoundStart { round: 0 })),
            encode_line(&TraceLine::Phase {
                phase: Phase::Round,
                nanos: 5
            }),
        );
        let e = parse_document(&doc).unwrap_err();
        assert!(e.0.starts_with("line 4:"), "{e}");
        let ok = parse_document(&doc[..doc.len() - "broken\n".len()]).unwrap();
        assert_eq!(ok.len(), 2);
    }
}
