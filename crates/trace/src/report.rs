//! [`TraceReport`]: folds trace lines into the two tables the bench
//! `trace_report` bin prints — a per-phase wall-time breakdown and a
//! per-layer Algorithm-2 aggregation-coverage table.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use adaptivefl_core::trace::{Phase, TraceEvent};

use crate::jsonl::TraceLine;
use crate::record::DurationHistogram;

/// Coverage accounting for one parameter tensor across all aggregation
/// events that touched it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LayerCoverage {
    /// Number of aggregation events (≈ rounds; Decoupled emits one per
    /// level model).
    pub events: usize,
    /// Total uploads that contributed across events.
    pub uploads: usize,
    /// Σ covered elements across events.
    pub covered_sum: u64,
    /// Σ total elements across events.
    pub total_sum: u64,
    /// Smallest per-event coverage fraction seen.
    pub min_fraction: f64,
    /// Largest per-event coverage fraction seen.
    pub max_fraction: f64,
}

impl LayerCoverage {
    fn fold(&mut self, covered: u64, total: u64, uploads: usize) {
        let frac = if total == 0 {
            0.0
        } else {
            covered as f64 / total as f64
        };
        if self.events == 0 {
            self.min_fraction = frac;
            self.max_fraction = frac;
        } else {
            self.min_fraction = self.min_fraction.min(frac);
            self.max_fraction = self.max_fraction.max(frac);
        }
        self.events += 1;
        self.uploads += uploads;
        self.covered_sum += covered;
        self.total_sum += total;
    }

    /// Mean coverage fraction, weighted by tensor size.
    pub fn mean_fraction(&self) -> f64 {
        if self.total_sum == 0 {
            0.0
        } else {
            self.covered_sum as f64 / self.total_sum as f64
        }
    }
}

/// Aggregated view of one or more traces.
#[derive(Default)]
pub struct TraceReport {
    /// Methods seen in `run_start` events, in arrival order.
    pub methods: Vec<String>,
    /// Per-phase duration histograms.
    pub phases: BTreeMap<&'static str, DurationHistogram>,
    /// Per-layer coverage, keyed by parameter name.
    pub coverage: BTreeMap<String, LayerCoverage>,
    /// Event counts keyed by [`TraceEvent::kind`].
    pub event_counts: BTreeMap<&'static str, usize>,
    /// Rounds observed (`round_end` events).
    pub rounds: usize,
    /// Total failures summed over `round_end` events.
    pub failures: usize,
    /// Total simulated seconds summed over `round_end` events.
    pub sim_secs: f64,
}

impl TraceReport {
    /// An empty report; fold lines in with [`TraceReport::add_lines`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a report from one parsed trace.
    pub fn from_lines(lines: &[TraceLine]) -> Self {
        let mut r = Self::new();
        r.add_lines(lines);
        r
    }

    /// Folds more lines in (merging multiple runs into one report).
    pub fn add_lines(&mut self, lines: &[TraceLine]) {
        for line in lines {
            match line {
                TraceLine::Phase { phase, nanos } => {
                    self.phases.entry(phase.name()).or_default().record(*nanos);
                }
                TraceLine::Event(e) => {
                    *self.event_counts.entry(e.kind()).or_default() += 1;
                    match e {
                        TraceEvent::RunStart { method, .. } if !self.methods.contains(method) => {
                            self.methods.push(method.clone());
                        }
                        TraceEvent::RoundEnd {
                            sim_secs, failures, ..
                        } => {
                            self.rounds += 1;
                            self.failures += *failures;
                            self.sim_secs += *sim_secs;
                        }
                        TraceEvent::LayerCoverage {
                            layer,
                            covered,
                            total,
                            uploads,
                            ..
                        } => {
                            self.coverage
                                .entry(layer.clone())
                                .or_default()
                                .fold(*covered, *total, *uploads);
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let methods = if self.methods.is_empty() {
            "(no run_start events)".to_string()
        } else {
            self.methods.join(", ")
        };
        writeln!(out, "trace report — methods: {methods}").unwrap();
        writeln!(
            out,
            "rounds: {}   failures: {}   simulated: {:.3}s",
            self.rounds, self.failures, self.sim_secs
        )
        .unwrap();

        let total_events: usize = self.event_counts.values().sum();
        let counts: Vec<String> = self
            .event_counts
            .iter()
            .map(|(k, n)| format!("{k} {n}"))
            .collect();
        writeln!(out, "events: {total_events} ({})", counts.join(", ")).unwrap();

        writeln!(out).unwrap();
        writeln!(out, "phase breakdown (wall clock)").unwrap();
        writeln!(
            out,
            "{:<14} {:>7} {:>10} {:>10} {:>10} {:>10}",
            "phase", "count", "total", "mean", "min", "max"
        )
        .unwrap();
        for phase in Phase::all() {
            let Some(h) = self.phases.get(phase.name()) else {
                continue;
            };
            writeln!(
                out,
                "{:<14} {:>7} {:>10} {:>10} {:>10} {:>10}",
                phase.name(),
                h.count(),
                fmt_nanos(h.total_nanos()),
                fmt_nanos(h.mean_nanos()),
                fmt_nanos(h.min_nanos()),
                fmt_nanos(h.max_nanos()),
            )
            .unwrap();
        }

        if !self.coverage.is_empty() {
            writeln!(out).unwrap();
            writeln!(out, "per-layer aggregation coverage (Algorithm 2)").unwrap();
            writeln!(
                out,
                "{:<28} {:>7} {:>8} {:>9} {:>9} {:>9}",
                "layer", "events", "uploads", "mean", "min", "max"
            )
            .unwrap();
            for (layer, c) in &self.coverage {
                writeln!(
                    out,
                    "{:<28} {:>7} {:>8} {:>8.1}% {:>8.1}% {:>8.1}%",
                    layer,
                    c.events,
                    c.uploads,
                    100.0 * c.mean_fraction(),
                    100.0 * c.min_fraction,
                    100.0 * c.max_fraction,
                )
                .unwrap();
            }
        }
        out
    }
}

/// Formats nanoseconds with a human unit (ns/µs/ms/s).
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2}s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_lines() -> Vec<TraceLine> {
        vec![
            TraceLine::Event(TraceEvent::RunStart {
                method: "AdaptiveFL".into(),
                start_round: 0,
                rounds: 2,
            }),
            TraceLine::Phase {
                phase: Phase::Round,
                nanos: 2_000_000,
            },
            TraceLine::Event(TraceEvent::LayerCoverage {
                round: 0,
                layer: "conv1.weight".into(),
                covered: 50,
                total: 100,
                uploads: 3,
            }),
            TraceLine::Event(TraceEvent::RoundEnd {
                round: 0,
                sim_secs: 1.5,
                failures: 1,
            }),
            TraceLine::Phase {
                phase: Phase::Round,
                nanos: 4_000_000,
            },
            TraceLine::Event(TraceEvent::LayerCoverage {
                round: 1,
                layer: "conv1.weight".into(),
                covered: 100,
                total: 100,
                uploads: 4,
            }),
            TraceLine::Event(TraceEvent::RoundEnd {
                round: 1,
                sim_secs: 2.5,
                failures: 0,
            }),
        ]
    }

    #[test]
    fn report_folds_phases_and_coverage() {
        let r = TraceReport::from_lines(&sample_lines());
        assert_eq!(r.methods, vec!["AdaptiveFL".to_string()]);
        assert_eq!(r.rounds, 2);
        assert_eq!(r.failures, 1);
        assert!((r.sim_secs - 4.0).abs() < 1e-12);
        let h = &r.phases["round"];
        assert_eq!(h.count(), 2);
        assert_eq!(h.total_nanos(), 6_000_000);
        let c = &r.coverage["conv1.weight"];
        assert_eq!(c.events, 2);
        assert_eq!(c.uploads, 7);
        assert!((c.mean_fraction() - 0.75).abs() < 1e-12);
        assert!((c.min_fraction - 0.5).abs() < 1e-12);
        assert!((c.max_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_both_tables() {
        let text = TraceReport::from_lines(&sample_lines()).render();
        assert!(text.contains("phase breakdown"), "{text}");
        assert!(text.contains("per-layer aggregation coverage"), "{text}");
        assert!(text.contains("conv1.weight"), "{text}");
        assert!(text.contains("AdaptiveFL"), "{text}");
        assert!(text.contains("75.0%"), "{text}");
    }

    #[test]
    fn fmt_nanos_picks_units() {
        assert_eq!(fmt_nanos(999), "999ns");
        assert_eq!(fmt_nanos(1_500), "1.5µs");
        assert_eq!(fmt_nanos(2_000_000), "2.0ms");
        assert_eq!(fmt_nanos(3_210_000_000), "3.21s");
    }
}
