//! `adaptivefl-trace`: tracer implementations and trace tooling for
//! the AdaptiveFL simulator.
//!
//! The [`Tracer`](adaptivefl_core::trace::Tracer) trait and the
//! zero-overhead `NoopTracer` default live in `adaptivefl-core`
//! (`core::trace`); this crate supplies everything that actually
//! records:
//!
//! * [`RecordingTracer`] — in-memory capture of events plus
//!   power-of-two [`DurationHistogram`]s per phase; the workhorse of
//!   tests and ad-hoc analysis.
//! * [`JsonlTracer`] — streams one flat JSON object per signal to a
//!   `.jsonl` file (best-effort I/O: disk trouble never perturbs the
//!   run).
//! * [`jsonl`] — the lossless line codec ([`encode_line`] /
//!   [`parse_line`]): floats are written in shortest round-trip form,
//!   so parse∘encode is the identity (proptested).
//! * [`TraceReport`] — folds parsed lines into the per-phase wall-time
//!   breakdown and per-layer Algorithm-2 coverage table the
//!   `trace_report` bench bin prints.
//!
//! The determinism contract: tracers observe, they never feed back.
//! A traced run's `RunResult` fingerprint is bit-identical to an
//! untraced one for every method kind, under both the perfect and the
//! faulty parallel transport — asserted in `tests/determinism.rs`.
//!
//! # Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use adaptivefl_core::methods::MethodKind;
//! use adaptivefl_core::sim::{SimConfig, Simulation};
//! use adaptivefl_data::{Partition, SynthSpec};
//! use adaptivefl_trace::{JsonlTracer, TraceReport};
//!
//! let cfg = SimConfig::quick_test(42);
//! let mut sim = Simulation::prepare(
//!     &cfg,
//!     &SynthSpec::cifar10_like(),
//!     Partition::Dirichlet(0.6),
//! );
//! sim.set_tracer(Arc::new(JsonlTracer::create("run.jsonl").unwrap()));
//! let result = sim.run(MethodKind::AdaptiveFl);
//!
//! let lines = adaptivefl_trace::read_trace("run.jsonl").unwrap();
//! println!("{}", TraceReport::from_lines(&lines).render());
//! ```

pub mod jsonl;
pub mod record;
pub mod report;
pub mod writer;

pub use jsonl::{encode_line, parse_document, parse_line, ParseError, TraceLine};
pub use record::{DurationHistogram, RecordingTracer};
pub use report::{fmt_nanos, LayerCoverage, TraceReport};
pub use writer::{read_trace, JsonlTracer};

// Re-export the core trait + default so downstream code can depend on
// this crate alone for tracing.
pub use adaptivefl_core::trace::{NoopTracer, Phase, PhaseTimer, TraceEvent, Tracer};
