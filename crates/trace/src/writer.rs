//! [`JsonlTracer`]: streams a run's trace to a `.jsonl` file.

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use adaptivefl_core::trace::{Phase, TraceEvent, Tracer};

use crate::jsonl::{encode_line, TraceLine};

/// A tracer that appends one JSON line per signal to a file, buffered.
///
/// Writes are best-effort: a full disk or yanked volume must not crash
/// (or otherwise perturb) the traced run, so I/O errors are swallowed
/// after the first and surfaced through [`JsonlTracer::flush`] /
/// [`JsonlTracer::had_errors`]. The buffer is flushed on drop.
pub struct JsonlTracer {
    out: Mutex<BufWriter<File>>,
    path: PathBuf,
    errored: std::sync::atomic::AtomicBool,
}

impl JsonlTracer {
    /// Creates (truncating) the trace file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(&path)?;
        Ok(JsonlTracer {
            out: Mutex::new(BufWriter::new(file)),
            path,
            errored: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// The file this tracer writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether any write has failed so far.
    pub fn had_errors(&self) -> bool {
        self.errored.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().expect("tracer poisoned").flush()
    }

    fn write_line(&self, line: &TraceLine) {
        let text = encode_line(line);
        let mut out = self.out.lock().expect("tracer poisoned");
        if writeln!(out, "{text}").is_err() {
            self.errored
                .store(true, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

impl Tracer for JsonlTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn event(&self, event: TraceEvent) {
        self.write_line(&TraceLine::Event(event));
    }

    fn phase(&self, phase: Phase, nanos: u64) {
        self.write_line(&TraceLine::Phase { phase, nanos });
    }
}

impl Drop for JsonlTracer {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

/// Reads and parses a `.jsonl` trace file.
pub fn read_trace(path: impl AsRef<Path>) -> std::io::Result<Vec<TraceLine>> {
    let text = std::fs::read_to_string(path.as_ref())?;
    crate::jsonl::parse_document(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_tracer_writes_parseable_lines() {
        let dir = std::env::temp_dir().join(format!("afl-trace-{}", std::process::id()));
        let path = dir.join("run.jsonl");
        let tracer = JsonlTracer::create(&path).unwrap();
        tracer.event(TraceEvent::RoundStart { round: 0 });
        tracer.phase(Phase::Round, 42);
        tracer.event(TraceEvent::Eval {
            round: 0,
            full: 0.25,
        });
        tracer.flush().unwrap();
        assert!(!tracer.had_errors());

        let lines = read_trace(&path).unwrap();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[1],
            TraceLine::Phase {
                phase: Phase::Round,
                nanos: 42
            }
        );
        drop(tracer);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
