//! In-memory tracer: captures every event and folds phase durations
//! into power-of-two-bucket histograms.

use std::collections::HashMap;
use std::sync::Mutex;

use adaptivefl_core::trace::{Phase, TraceEvent, Tracer};

/// A histogram of monotonic durations with power-of-two nanosecond
/// buckets: bucket `i` counts samples in `[2^i, 2^(i+1))` ns (bucket 0
/// also holds zero). 64 buckets cover every representable `u64`
/// duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurationHistogram {
    buckets: [u64; 64],
    count: u64,
    total_nanos: u64,
    min_nanos: u64,
    max_nanos: u64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram {
            buckets: [0; 64],
            count: 0,
            total_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
        }
    }
}

impl DurationHistogram {
    /// Bucket index for a duration: `floor(log2(nanos))`, 0 for 0.
    fn bucket_of(nanos: u64) -> usize {
        (63 - nanos.max(1).leading_zeros()) as usize
    }

    /// Folds one sample in.
    pub fn record(&mut self, nanos: u64) {
        self.buckets[Self::bucket_of(nanos)] += 1;
        self.count += 1;
        self.total_nanos = self.total_nanos.saturating_add(nanos);
        self.min_nanos = self.min_nanos.min(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, nanoseconds (saturating).
    pub fn total_nanos(&self) -> u64 {
        self.total_nanos
    }

    /// Smallest sample (0 when empty).
    pub fn min_nanos(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_nanos
        }
    }

    /// Largest sample.
    pub fn max_nanos(&self) -> u64 {
        self.max_nanos
    }

    /// Mean sample (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.total_nanos.checked_div(self.count).unwrap_or(0)
    }

    /// The raw power-of-two buckets.
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }
}

#[derive(Default)]
struct Recording {
    events: Vec<TraceEvent>,
    phases: HashMap<Phase, DurationHistogram>,
}

/// A tracer that keeps everything in memory — the workhorse of tests
/// and ad-hoc analysis. Thread-safe: client jobs on transport worker
/// threads append through the same mutex, and event order within one
/// thread is preserved.
#[derive(Default)]
pub struct RecordingTracer {
    inner: Mutex<Recording>,
}

impl RecordingTracer {
    /// An empty recording tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every captured event, in arrival order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().expect("tracer poisoned").events.clone()
    }

    /// Number of captured events.
    pub fn event_count(&self) -> usize {
        self.inner.lock().expect("tracer poisoned").events.len()
    }

    /// Events matching a predicate.
    pub fn events_where(&self, pred: impl Fn(&TraceEvent) -> bool) -> Vec<TraceEvent> {
        self.inner
            .lock()
            .expect("tracer poisoned")
            .events
            .iter()
            .filter(|e| pred(e))
            .cloned()
            .collect()
    }

    /// Event counts keyed by [`TraceEvent::kind`], sorted by kind.
    pub fn counts_by_kind(&self) -> Vec<(&'static str, usize)> {
        let guard = self.inner.lock().expect("tracer poisoned");
        let mut map: HashMap<&'static str, usize> = HashMap::new();
        for e in &guard.events {
            *map.entry(e.kind()).or_default() += 1;
        }
        let mut out: Vec<_> = map.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// The duration histogram of one phase (`None` if never timed).
    pub fn histogram(&self, phase: Phase) -> Option<DurationHistogram> {
        self.inner
            .lock()
            .expect("tracer poisoned")
            .phases
            .get(&phase)
            .cloned()
    }
}

impl Tracer for RecordingTracer {
    fn enabled(&self) -> bool {
        true
    }

    fn event(&self, event: TraceEvent) {
        self.inner
            .lock()
            .expect("tracer poisoned")
            .events
            .push(event);
    }

    fn phase(&self, phase: Phase, nanos: u64) {
        self.inner
            .lock()
            .expect("tracer poisoned")
            .phases
            .entry(phase)
            .or_default()
            .record(nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = DurationHistogram::default();
        for n in [0, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(n);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.min_nanos(), 0);
        assert_eq!(h.max_nanos(), u64::MAX);
        // 0 and 1 share bucket 0; 2 and 3 bucket 1; 4 and 7 bucket 2.
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[3], 1); // 8
        assert_eq!(h.buckets()[9], 1); // 1023
        assert_eq!(h.buckets()[10], 1); // 1024
        assert_eq!(h.buckets()[63], 1); // u64::MAX
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = DurationHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_nanos(), 0);
        assert_eq!(h.max_nanos(), 0);
        assert_eq!(h.mean_nanos(), 0);
    }

    #[test]
    fn recording_tracer_captures_events_and_phases() {
        let t = RecordingTracer::new();
        assert!(t.enabled());
        t.event(TraceEvent::RoundStart { round: 0 });
        t.event(TraceEvent::RoundStart { round: 1 });
        t.event(TraceEvent::Eval {
            round: 1,
            full: 0.5,
        });
        t.phase(Phase::Round, 100);
        t.phase(Phase::Round, 300);
        t.phase(Phase::Eval, 50);

        assert_eq!(t.event_count(), 3);
        assert_eq!(t.counts_by_kind(), vec![("eval", 1), ("round_start", 2)]);
        let h = t.histogram(Phase::Round).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.total_nanos(), 400);
        assert_eq!(h.mean_nanos(), 200);
        assert!(t.histogram(Phase::Aggregate).is_none());
        assert_eq!(
            t.events_where(|e| matches!(e, TraceEvent::RoundStart { .. }))
                .len(),
            2
        );
    }
}
