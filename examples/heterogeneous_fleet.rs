//! Heterogeneous fleet comparison: AdaptiveFL against the baselines on
//! a non-IID task with a weak-heavy (8:1:1) device fleet — the setting
//! where resource-adaptive dispatch matters most (paper Table 3).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example heterogeneous_fleet
//! ```

use adaptivefl::core::methods::MethodKind;
use adaptivefl::core::sim::{SimConfig, Simulation};
use adaptivefl::data::{Partition, SynthSpec};
use adaptivefl::models::{ModelConfig, ModelKind};

fn main() {
    let spec = SynthSpec::cifar10_like();
    let mut cfg = SimConfig::fast(
        ModelConfig {
            kind: ModelKind::TinyCnn,
            input: spec.input,
            classes: spec.classes,
            width_mult: 1.0,
        },
        7,
    );
    cfg.num_clients = 40;
    cfg.rounds = 12;
    cfg.eval_every = 12;
    cfg.proportions = (8, 1, 1); // almost everyone is a weak device

    println!(
        "Fleet: {} clients at 8:1:1 weak:medium:strong, α = 0.6\n",
        cfg.num_clients
    );
    println!(
        "{:<14} {:>9} {:>9} {:>11}",
        "method", "avg", "full", "comm-waste"
    );

    for kind in [
        MethodKind::Decoupled,
        MethodKind::HeteroFl,
        MethodKind::ScaleFl,
        MethodKind::AdaptiveFl,
    ] {
        let mut sim = Simulation::prepare(&cfg, &spec, Partition::Dirichlet(0.6));
        let r = sim.run(kind);
        println!(
            "{:<14} {:>8.1}% {:>8.1}% {:>10.1}%",
            r.method,
            100.0 * r.final_avg_accuracy(),
            100.0 * r.final_full_accuracy(),
            100.0 * r.comm_waste_rate()
        );
    }
    println!("\nWith mostly weak devices, methods that share parameters across");
    println!("levels (AdaptiveFL) keep the large model learning even though it");
    println!("is rarely trained directly.");
}
