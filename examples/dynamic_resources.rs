//! Dynamic resources: how the RL client selection reduces wasted
//! communication when device capacities fluctuate round to round
//! (paper Figure 5).
//!
//! "Greedy" always dispatches the largest model, so every weak client
//! has to prune it down locally and the downlink bytes are mostly
//! wasted; the RL policy learns each client's effective size from the
//! models it returns.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dynamic_resources
//! ```

use adaptivefl::core::methods::MethodKind;
use adaptivefl::core::select::SelectionStrategy;
use adaptivefl::core::sim::{SimConfig, Simulation};
use adaptivefl::data::{Partition, SynthSpec};
use adaptivefl::device::ResourceDynamics;
use adaptivefl::models::{ModelConfig, ModelKind};

fn main() {
    let spec = SynthSpec::cifar10_like();
    let mut cfg = SimConfig::fast(
        ModelConfig {
            kind: ModelKind::TinyCnn,
            input: spec.input,
            classes: spec.classes,
            width_mult: 1.0,
        },
        11,
    );
    cfg.num_clients = 40;
    cfg.rounds = 20;
    cfg.eval_every = 20;
    // Strongly uncertain environment: ±10% jitter + frequent load
    // spikes that take 60% of a device's capacity away.
    cfg.dynamics = ResourceDynamics::Spiky {
        jitter: 0.10,
        drop_prob: 0.25,
        drop_to: 0.4,
    };

    println!("Selection-strategy ablation under spiky resources\n");
    println!(
        "{:<22} {:>9} {:>11} {:>9}",
        "variant", "full", "comm-waste", "failures"
    );

    for kind in [
        MethodKind::AdaptiveFlGreedy,
        MethodKind::AdaptiveFlVariant(SelectionStrategy::Random),
        MethodKind::AdaptiveFlVariant(SelectionStrategy::CuriosityOnly),
        MethodKind::AdaptiveFlVariant(SelectionStrategy::ResourceOnly),
        MethodKind::AdaptiveFl, // +CS
    ] {
        let mut sim = Simulation::prepare(&cfg, &spec, Partition::Iid);
        let r = sim.run(kind);
        let failures: usize = r.rounds.iter().map(|x| x.failures).sum();
        println!(
            "{:<22} {:>8.1}% {:>10.1}% {:>9}",
            r.method,
            100.0 * r.final_full_accuracy(),
            100.0 * r.comm_waste_rate(),
            failures
        );
    }
}
