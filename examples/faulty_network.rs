//! Faulty network: the same AdaptiveFL experiment over a perfect link
//! and over `SimTransport` with drops, stragglers, crashes, and a round
//! deadline — comparing accuracy, wall-clock, and the link statistics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example faulty_network
//! ```

use adaptivefl::comm::{FaultPlan, SimTransport};
use adaptivefl::core::methods::MethodKind;
use adaptivefl::core::metrics::RunResult;
use adaptivefl::core::sim::{SimConfig, Simulation};
use adaptivefl::data::{Partition, SynthSpec};

fn prepare() -> Simulation {
    let spec = SynthSpec::test_spec(4);
    let mut cfg = SimConfig::quick_test(42);
    cfg.model.input = spec.input;
    cfg.rounds = 8;
    cfg.eval_every = 4;
    Simulation::prepare(&cfg, &spec, Partition::Dirichlet(0.6))
}

fn report(label: &str, res: &RunResult) {
    let comm = res.total_comm();
    let secs: f64 = res.rounds.iter().map(|r| r.sim_secs).sum();
    println!(
        "{label:<22} acc {:>5.1}%  waste {:>5.1}%  sim time {:>7.1}s  \
         down {:>6.1} MB  up {:>6.1} MB  drops {:>2}  stragglers {:>2}  \
         late {:>2}  crashes {:>2}",
        100.0 * res.final_full_accuracy(),
        100.0 * res.comm_waste_rate(),
        secs,
        comm.bytes_down as f64 / 1e6,
        comm.bytes_up as f64 / 1e6,
        comm.drops,
        comm.stragglers,
        comm.deadline_misses,
        comm.crashes,
    );
}

fn main() {
    // Baseline: the default lossless, sequential link.
    let clean = prepare().run(MethodKind::AdaptiveFl);
    report("perfect link", &clean);

    // The same experiment over a lossy link: 15% upload drops, 10%
    // stragglers at 4x slowdown, 5% client crashes.
    let plan = FaultPlan {
        upload_drop: 0.15,
        straggler_prob: 0.10,
        crash_prob: 0.05,
        ..Default::default()
    };
    let mut faulty = SimTransport::new().with_threads(4).with_faults(plan);
    let lossy = prepare().run_with_transport(MethodKind::AdaptiveFl, &mut faulty);
    report("lossy link", &lossy);

    // Add a round deadline: uploads slower than the budget are wasted
    // and the server stops waiting, trading accuracy for wall-clock.
    let deadline = 0.5
        * prepare().run(MethodKind::AdaptiveFl).rounds[0]
            .sim_secs
            .max(1e-6);
    let mut tight = SimTransport::new()
        .with_threads(4)
        .with_faults(plan)
        .with_deadline(deadline);
    let capped = prepare().run_with_transport(MethodKind::AdaptiveFl, &mut tight);
    report(&format!("deadline {:.0}ms", deadline * 1e3), &capped);

    // The parallel executor is deterministic: any thread count replays
    // the identical run.
    let rerun = {
        let mut t = SimTransport::new().with_threads(1).with_faults(plan);
        prepare().run_with_transport(MethodKind::AdaptiveFl, &mut t)
    };
    println!(
        "\n1-thread rerun identical to 4-thread run: {}",
        rerun == lossy
    );
}
