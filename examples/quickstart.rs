//! Quickstart: train AdaptiveFL on a small synthetic federated task
//! and print its learning curve.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adaptivefl::core::methods::MethodKind;
use adaptivefl::core::sim::{SimConfig, Simulation};
use adaptivefl::data::{Partition, SynthSpec};
use adaptivefl::models::{ModelConfig, ModelKind};

fn main() {
    // A CIFAR-10-like synthetic task: 10 classes, 3×16×16 inputs,
    // 40 clients with Dirichlet(0.6) label skew, uncertain device
    // resources in a 4:3:3 weak/medium/strong fleet.
    let spec = SynthSpec::cifar10_like();
    let mut cfg = SimConfig::fast(
        ModelConfig {
            kind: ModelKind::TinyCnn,
            input: spec.input,
            classes: spec.classes,
            width_mult: 1.0,
        },
        42,
    );
    cfg.num_clients = 40;
    cfg.rounds = 15;
    cfg.eval_every = 3;

    println!(
        "Preparing {} clients ({:?} proportions)…",
        cfg.num_clients, cfg.proportions
    );
    let mut sim = Simulation::prepare(&cfg, &spec, Partition::Dirichlet(0.6));

    println!("Model pool (2p+1 = {} submodels):", sim.env().pool.len());
    for e in sim.env().pool.entries() {
        println!(
            "  {:4}  r_w = {:.2}  I = {:2}  {:>8} params",
            e.name(),
            e.spec.r_w,
            e.spec.start_unit,
            e.params
        );
    }

    let result = sim.run(MethodKind::AdaptiveFl);
    println!("\nround  full-acc  avg-acc");
    for (round, full, avg) in result.curve() {
        println!(
            "{:5}  {:7.1}%  {:6.1}%",
            round + 1,
            100.0 * full,
            100.0 * avg
        );
    }
    println!(
        "\nfinal accuracy: {:.1}% (full) / {:.1}% (avg over S/M/L submodels)",
        100.0 * result.final_full_accuracy(),
        100.0 * result.final_avg_accuracy()
    );
    println!(
        "communication waste rate: {:.1}%",
        100.0 * result.comm_waste_rate()
    );
}
