//! Crash and resume: a 30-round AdaptiveFL run over a faulty parallel
//! transport is checkpointed to disk, "killed" mid-way, and resumed in
//! a fresh simulation — producing a 9-decimal fingerprint identical to
//! the uninterrupted control run.
//!
//! Run the in-process demo with:
//!
//! ```text
//! cargo run --release --example resume_run
//! ```
//!
//! Or stage a real crash across processes (as the CI recovery job
//! does):
//!
//! ```text
//! cargo run --release --example resume_run -- --control --out control.txt
//! cargo run --release --example resume_run -- --halt-after 11 --dir ckpt/
//! cargo run --release --example resume_run -- --resume --dir ckpt/ --out resumed.txt
//! diff control.txt resumed.txt
//! ```

use std::fs;
use std::path::PathBuf;
use std::process::exit;

use adaptivefl::comm::{FaultPlan, SimTransport};
use adaptivefl::core::methods::MethodKind;
use adaptivefl::core::metrics::RunResult;
use adaptivefl::core::sim::{RunHooks, SimConfig, Simulation};
use adaptivefl::data::{Partition, SynthSpec};
use adaptivefl::store::SnapshotStore;

const KIND: MethodKind = MethodKind::AdaptiveFl;
const SEED: u64 = 424;
const ROUNDS: usize = 30;
const HALT_DEFAULT: usize = 11;

fn spec() -> SynthSpec {
    let mut s = SynthSpec::test_spec(4);
    s.input = (3, 8, 8);
    s
}

fn prepare() -> Simulation {
    let mut cfg = SimConfig::quick_test(SEED);
    cfg.rounds = ROUNDS;
    cfg.eval_every = 5;
    Simulation::prepare(&cfg, &spec(), Partition::Dirichlet(0.5))
}

/// The faulty link both halves of the run must be configured with:
/// faults and deadlines derive from `(seed, round, client)`, so a
/// freshly built transport replays identically after a crash.
fn transport() -> SimTransport {
    SimTransport::new()
        .with_threads(2)
        .with_faults(FaultPlan {
            upload_drop: 0.15,
            straggler_prob: 0.2,
            crash_prob: 0.05,
            ..Default::default()
        })
        .with_deadline(500.0)
}

/// The 9-decimal fingerprint: any divergence between a resumed run and
/// its control shows up here, down to the last bit that matters.
fn fingerprint(r: &RunResult) -> String {
    let mut out = String::new();
    for rec in &r.rounds {
        out.push_str(&format!(
            "{} r{} sent={} back={} loss={:.9} secs={:.9} fail={} down={} up={} drop={} strag={} miss={} crash={}\n",
            r.method,
            rec.round,
            rec.sent_params,
            rec.returned_params,
            rec.train_loss,
            rec.sim_secs,
            rec.failures,
            rec.comm.bytes_down,
            rec.comm.bytes_up,
            rec.comm.drops,
            rec.comm.stragglers,
            rec.comm.deadline_misses,
            rec.comm.crashes,
        ));
    }
    for e in &r.evals {
        let levels: Vec<String> = e
            .levels
            .iter()
            .map(|(n, a)| format!("{n}={a:.9}"))
            .collect();
        out.push_str(&format!(
            "{} e{} full={:.9} {}\n",
            r.method,
            e.round,
            e.full,
            levels.join(" ")
        ));
    }
    out
}

fn emit(fp: &str, out: Option<&PathBuf>) {
    match out {
        Some(path) => fs::write(path, fp).expect("writing fingerprint file"),
        None => print!("{fp}"),
    }
}

struct Args {
    control: bool,
    resume: bool,
    halt_after: Option<usize>,
    dir: Option<PathBuf>,
    out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        control: false,
        resume: false,
        halt_after: None,
        dir: None,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--control" => args.control = true,
            "--resume" => args.resume = true,
            "--halt-after" => {
                let v = it.next().expect("--halt-after needs a round count");
                args.halt_after = Some(v.parse().expect("--halt-after needs a number"));
            }
            "--dir" => args.dir = Some(PathBuf::from(it.next().expect("--dir needs a path"))),
            "--out" => args.out = Some(PathBuf::from(it.next().expect("--out needs a path"))),
            other => {
                eprintln!("unknown argument {other}");
                exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();

    if args.control {
        // The uninterrupted reference run.
        let result = prepare().run_with_transport(KIND, &mut transport());
        emit(&fingerprint(&result), args.out.as_ref());
        return;
    }

    if let Some(halt) = args.halt_after {
        // First half of a staged crash: checkpoint every 5 rounds, save
        // a final snapshot at `halt`, then exit as if killed.
        let dir = args.dir.expect("--halt-after needs --dir");
        let mut store = SnapshotStore::open(&dir).expect("opening store");
        let halted = prepare()
            .run_with_hooks(
                KIND,
                &mut transport(),
                RunHooks {
                    checkpoint_every: 5,
                    sink: &mut store,
                    halt_after: Some(halt),
                },
            )
            .expect("checkpointed run");
        assert!(halted.is_none(), "run should have halted at round {halt}");
        eprintln!("halted after {halt} rounds; snapshots in {}", dir.display());
        return;
    }

    if args.resume {
        // Second half: a fresh process finds the newest valid snapshot
        // and completes the run.
        let dir = args.dir.expect("--resume needs --dir");
        let store = SnapshotStore::open(&dir).expect("opening store");
        let (path, snap) = store
            .latest_valid()
            .expect("scanning store")
            .expect("no valid snapshot to resume from");
        eprintln!(
            "resuming from {} (after round {})",
            path.display(),
            snap.completed_rounds
        );
        let result = prepare()
            .resume_with_transport(&snap, &mut transport())
            .expect("resume");
        emit(&fingerprint(&result), args.out.as_ref());
        return;
    }

    // Default: the whole story in one process.
    println!("control: {ROUNDS} rounds of {KIND} over a faulty 2-thread transport");
    let control = prepare().run_with_transport(KIND, &mut transport());
    let control_fp = fingerprint(&control);

    let dir = std::env::temp_dir().join(format!("afl-resume-demo-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let mut store = SnapshotStore::open(&dir).expect("opening store");
    println!(
        "crash:   same run, checkpoint every 5 rounds, killed after {HALT_DEFAULT} \
         (snapshots in {})",
        dir.display()
    );
    let halted = prepare()
        .run_with_hooks(
            KIND,
            &mut transport(),
            RunHooks {
                checkpoint_every: 5,
                sink: &mut store,
                halt_after: Some(HALT_DEFAULT),
            },
        )
        .expect("checkpointed run");
    assert!(halted.is_none());

    // Everything in memory is dropped; only the .afs files remain.
    drop(store);
    let store = SnapshotStore::open(&dir).expect("reopening store");
    let (path, snap) = store
        .latest_valid()
        .expect("scanning store")
        .expect("snapshot survives the crash");
    println!(
        "resume:  {} (after round {}) → rounds {}..{ROUNDS}",
        path.file_name().unwrap().to_string_lossy(),
        snap.completed_rounds,
        snap.completed_rounds + 1
    );
    let resumed = prepare()
        .resume_with_transport(&snap, &mut transport())
        .expect("resume");
    let resumed_fp = fingerprint(&resumed);

    println!("\ncontrol fingerprint (last 3 lines):");
    for line in control_fp
        .lines()
        .rev()
        .take(3)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        println!("  {line}");
    }
    println!("resumed fingerprint (last 3 lines):");
    for line in resumed_fp
        .lines()
        .rev()
        .take(3)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        println!("  {line}");
    }

    let _ = fs::remove_dir_all(&dir);
    assert_eq!(
        control_fp, resumed_fp,
        "resumed run diverged from the control"
    );
    println!("\nfingerprints match: resume is bit-identical to the uninterrupted run");
}
