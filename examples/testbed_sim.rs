//! Simulated real test-bed (paper §4.5 / Figure 6): 17 AIoT devices —
//! 4 Raspberry Pi 4B, 10 Jetson Nano, 3 Jetson Xavier AGX — training a
//! MobileNetV2 on a Widar-like gesture task, with accuracy plotted
//! against *simulated wall-clock time* from the calibrated latency
//! model.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example testbed_sim
//! ```

use adaptivefl::core::methods::MethodKind;
use adaptivefl::core::sim::{SimConfig, Simulation};
use adaptivefl::data::{Partition, SynthSpec};
use adaptivefl::device::testbed::paper_testbed;
use adaptivefl::models::ModelConfig;

fn main() {
    // Widar-like: 22 gesture classes, device-conditioned signal maps,
    // one natural group per device (ByGroup partition).
    let mut spec = SynthSpec::widar_like();
    spec.input = (1, 8, 8);
    // At this reduced input resolution, keep the task learnable in a
    // couple dozen rounds.
    spec.signal = 1.6;
    spec.group_shift = 0.5;
    let model = ModelConfig {
        classes: spec.classes,
        ..ModelConfig::mobilenet_v2_fast(spec.classes)
    };

    let mut cfg = SimConfig::fast(model, 17);
    cfg.num_clients = 17; // Table 5
    cfg.clients_per_round = 10; // paper: 10 devices per round
    cfg.rounds = 24;
    cfg.eval_every = 4;
    cfg.samples_per_client = 40;

    let full_params = model.num_params(&model.full_plan());
    let fleet = paper_testbed(full_params, cfg.seed);
    println!(
        "Test-bed: {} devices {:?} (weak/medium/strong)\n",
        fleet.len(),
        fleet.class_counts()
    );

    for kind in [MethodKind::HeteroFl, MethodKind::AdaptiveFl] {
        let mut sim = Simulation::prepare(&cfg, &spec, Partition::ByGroup)
            .with_fleet(paper_testbed(full_params, cfg.seed));
        let r = sim.run(kind);
        println!("{} — accuracy vs simulated wall-clock:", r.method);
        for (secs, acc) in r.time_curve() {
            println!("  t = {:8.1}s   acc = {:5.1}%", secs, 100.0 * acc);
        }
        println!(
            "  total simulated time {:.1}s, comm waste {:.1}%\n",
            r.total_sim_secs(),
            100.0 * r.comm_waste_rate()
        );
    }
    let _ = fleet;
}
